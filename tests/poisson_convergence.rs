//! Spectral convergence of the Poisson/Helmholtz solves — the core
//! accuracy property of the SEM discretization (paper §4.2).

use rbx::comm::SingleComm;
use rbx::gs::GatherScatter;
use rbx::la::bc::dirichlet_mask;
use rbx::la::helmholtz::{HelmholtzOp, HelmholtzScratch};
use rbx::la::jacobi::{assembled_diagonal, jacobi_apply};
use rbx::la::krylov::pcg;
use rbx::la::ops::{hadamard, DotProduct};
use rbx::mesh::generators::box_mesh;
use rbx::mesh::{BoundaryTag, GeomFactors};
use std::f64::consts::PI;

const ALL: [BoundaryTag; 3] = [
    BoundaryTag::Wall,
    BoundaryTag::HotWall,
    BoundaryTag::ColdWall,
];

/// Solve −∇²u = 3π²·sin(πx)sin(πy)sin(πz) with homogeneous Dirichlet BCs
/// and return the max nodal error.
fn poisson_error(order: usize) -> f64 {
    let mesh = box_mesh(2, 2, 2, [0., 1.], [0., 1.], [0., 1.], false, false);
    let comm = SingleComm::new();
    let part = vec![0; mesh.num_elements()];
    let my: Vec<usize> = (0..mesh.num_elements()).collect();
    let geom = GeomFactors::new(&mesh, order);
    let gs = GatherScatter::build(&mesh, order, &part, &my, &comm);
    let mask = dirichlet_mask(&mesh, order, &my, &ALL, &gs, &comm);
    let mult = gs.multiplicity(&comm);
    let dp = DotProduct::new(&mult);
    let op = HelmholtzOp {
        geom: &geom,
        gs: &gs,
        mask: &mask,
        h1: 1.0,
        h2: 0.0,
    };
    let diag = assembled_diagonal(&geom, &gs, 1.0, 0.0, &comm);

    let n = geom.total_nodes();
    let exact: Vec<f64> = (0..n)
        .map(|i| {
            (PI * geom.coords[0][i]).sin()
                * (PI * geom.coords[1][i]).sin()
                * (PI * geom.coords[2][i]).sin()
        })
        .collect();
    // Weak rhs: B·f, assembled and masked.
    let mut rhs: Vec<f64> = (0..n)
        .map(|i| geom.mass[i] * 3.0 * PI * PI * exact[i])
        .collect();
    gs.apply(&mut rhs, rbx::gs::GsOp::Add, &comm);
    hadamard(&mask, &mut rhs);

    let mut x = vec![0.0; n];
    let mut scratch = HelmholtzScratch::default();
    let stats = pcg(
        |p, ap| op.apply(p, ap, &mut scratch, &comm),
        |r, z| jacobi_apply(&diag, &mask, r, z),
        |a, b| dp.dot(a, b, &comm),
        &rhs,
        &mut x,
        1e-12,
        0.0,
        2000,
    );
    assert!(stats.converged, "order {order}: {stats:?}");
    x.iter()
        .zip(&exact)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[test]
fn poisson_error_decays_spectrally() {
    let e3 = poisson_error(3);
    let e5 = poisson_error(5);
    let e7 = poisson_error(7);
    // Each +2 in order should gain well over an order of magnitude on a
    // smooth solution.
    assert!(e5 < e3 / 20.0, "e3 = {e3:.3e}, e5 = {e5:.3e}");
    assert!(e7 < e5 / 20.0, "e5 = {e5:.3e}, e7 = {e7:.3e}");
    assert!(e7 < 1e-6, "degree-7 error {e7:.3e}");
}

#[test]
fn helmholtz_manufactured_solution() {
    // (−∇² + λ)u = f with λ = 5: same manufactured solution, shifted rhs.
    let order = 6;
    let lambda = 5.0;
    let mesh = box_mesh(2, 2, 2, [0., 1.], [0., 1.], [0., 1.], false, false);
    let comm = SingleComm::new();
    let part = vec![0; mesh.num_elements()];
    let my: Vec<usize> = (0..mesh.num_elements()).collect();
    let geom = GeomFactors::new(&mesh, order);
    let gs = GatherScatter::build(&mesh, order, &part, &my, &comm);
    let mask = dirichlet_mask(&mesh, order, &my, &ALL, &gs, &comm);
    let mult = gs.multiplicity(&comm);
    let dp = DotProduct::new(&mult);
    // H = λB + A: h1 = 1 (stiffness), h2 = λ (mass).
    let op = HelmholtzOp {
        geom: &geom,
        gs: &gs,
        mask: &mask,
        h1: 1.0,
        h2: lambda,
    };
    let diag = assembled_diagonal(&geom, &gs, 1.0, lambda, &comm);

    let n = geom.total_nodes();
    let exact: Vec<f64> = (0..n)
        .map(|i| {
            (PI * geom.coords[0][i]).sin()
                * (2.0 * PI * geom.coords[1][i]).sin()
                * (PI * geom.coords[2][i]).sin()
        })
        .collect();
    let coef = 6.0 * PI * PI + lambda; // (π² + 4π² + π²) + λ
    let mut rhs: Vec<f64> = (0..n).map(|i| geom.mass[i] * coef * exact[i]).collect();
    gs.apply(&mut rhs, rbx::gs::GsOp::Add, &comm);
    hadamard(&mask, &mut rhs);

    let mut x = vec![0.0; n];
    let mut scratch = HelmholtzScratch::default();
    let stats = pcg(
        |p, ap| op.apply(p, ap, &mut scratch, &comm),
        |r, z| jacobi_apply(&diag, &mask, r, z),
        |a, b| dp.dot(a, b, &comm),
        &rhs,
        &mut x,
        1e-12,
        0.0,
        2000,
    );
    assert!(stats.converged);
    let err = x
        .iter()
        .zip(&exact)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(err < 1e-4, "Helmholtz error {err:.3e}");
}

#[test]
fn poisson_on_curved_cylinder_mesh() {
    // Solve on the o-grid cylinder: manufactured solution vanishing on all
    // walls: u = (R² − r²)·sin(πz), with the corresponding rhs.
    use rbx::mesh::cylinder::{cylinder_mesh, CylinderParams};
    let order = 7;
    let radius = 0.5f64;
    let mesh = cylinder_mesh(CylinderParams {
        radius,
        height: 1.0,
        n_square: 2,
        n_rings: 2,
        n_z: 2,
        beta_z: 0.0,
    });
    let comm = SingleComm::new();
    let part = vec![0; mesh.num_elements()];
    let my: Vec<usize> = (0..mesh.num_elements()).collect();
    let geom = GeomFactors::new(&mesh, order);
    let gs = GatherScatter::build(&mesh, order, &part, &my, &comm);
    let mask = dirichlet_mask(&mesh, order, &my, &ALL, &gs, &comm);
    let mult = gs.multiplicity(&comm);
    let dp = DotProduct::new(&mult);
    let op = HelmholtzOp {
        geom: &geom,
        gs: &gs,
        mask: &mask,
        h1: 1.0,
        h2: 0.0,
    };
    let diag = assembled_diagonal(&geom, &gs, 1.0, 0.0, &comm);

    let n = geom.total_nodes();
    let exact: Vec<f64> = (0..n)
        .map(|i| {
            let (x, y, z) = (geom.coords[0][i], geom.coords[1][i], geom.coords[2][i]);
            (radius * radius - x * x - y * y) * (PI * z).sin()
        })
        .collect();
    // −∇²u = [4 + π²(R² − r²)]·sin(πz).
    let mut rhs: Vec<f64> = (0..n)
        .map(|i| {
            let (x, y, z) = (geom.coords[0][i], geom.coords[1][i], geom.coords[2][i]);
            let r2 = x * x + y * y;
            geom.mass[i] * (4.0 + PI * PI * (radius * radius - r2)) * (PI * z).sin()
        })
        .collect();
    gs.apply(&mut rhs, rbx::gs::GsOp::Add, &comm);
    hadamard(&mask, &mut rhs);

    let mut x = vec![0.0; n];
    let mut scratch = HelmholtzScratch::default();
    let stats = pcg(
        |p, ap| op.apply(p, ap, &mut scratch, &comm),
        |r, z| jacobi_apply(&diag, &mask, r, z),
        |a, b| dp.dot(a, b, &comm),
        &rhs,
        &mut x,
        1e-12,
        0.0,
        4000,
    );
    assert!(stats.converged, "{stats:?}");
    let err = x
        .iter()
        .zip(&exact)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    // Curved geometry: spectral accuracy limited by the o-grid blending,
    // but degree 7 must be well below 1e-3 on this smooth solution.
    assert!(err < 1e-3, "cylinder Poisson error {err:.3e}");
}
