//! The full in-situ pipeline: solver → staging channel → streaming POD on
//! a separate thread, validated against the offline method of snapshots on
//! the identical data.

use rbx::comm::SingleComm;
use rbx::core::{Simulation, SolverConfig};
use rbx::insitu::{PodBatch, PodConsumer};
use rbx::io::{staging_channel, StepData, Variable};

#[test]
fn insitu_pod_matches_offline_on_solver_data() {
    let case = rbx::core::rbc_box_case(1.0, 2, 2, false, 1);
    let comm = SingleComm::new();
    let cfg = SolverConfig {
        ra: 5e4,
        order: 4,
        dt: 2e-3,
        ic_noise: 0.05,
        ..Default::default()
    };
    let mut sim = Simulation::new(cfg, &case.mesh, &case.part, case.elems[0].clone(), &comm);
    sim.init_rbc();
    let n = sim.n_local();
    let weights = sim.geom.mass.clone();

    let (writer, reader) = staging_channel(3);
    let consumer =
        PodConsumer::spawn(reader, "uz", weights.clone(), 12).expect("spawn POD consumer");

    // Run and stream; also keep copies for the offline reference.
    let mut kept = Vec::new();
    for step in 1..=80 {
        assert!(sim.step().converged);
        if step % 10 == 0 {
            let snap = sim.state.u[2].clone();
            writer.put(StepData {
                step,
                time: sim.state.time,
                vars: vec![Variable::f64("uz", vec![n as u64], snap.clone())],
            });
            kept.push(snap);
        }
    }
    writer.close();
    let streaming = consumer.join().expect("POD consumer finished cleanly");
    assert_eq!(streaming.count(), kept.len());

    let offline = PodBatch::new(weights).compute(&kept, &comm);
    assert!(!offline.singular_values.is_empty());
    // Compare the energetic modes; the numerical-noise tail (σ ≲ 1e-4 of
    // the leading mode) is not uniquely determined and may differ between
    // the rank-capped streaming update and the offline reference.
    let sigma0 = offline.singular_values[0];
    let mut compared = 0;
    for (k, (s, o)) in streaming
        .singular_values()
        .iter()
        .zip(&offline.singular_values)
        .enumerate()
    {
        if *o < 1e-4 * sigma0 {
            break;
        }
        assert!(
            (s - o).abs() <= 1e-4 * sigma0,
            "mode {k}: streaming σ {s:.6e} vs offline {o:.6e}"
        );
        compared += 1;
    }
    assert!(
        compared >= 2,
        "too few energetic modes compared: {compared}"
    );
}

#[test]
fn async_file_engine_runs_alongside_solver() {
    // Async BPL writer ingests snapshots while the solver advances; the
    // file must contain every step afterwards.
    use rbx::io::{read_bpl, AsyncBplWriter};
    let case = rbx::core::rbc_box_case(1.0, 2, 2, false, 1);
    let comm = SingleComm::new();
    let cfg = SolverConfig {
        ra: 1e4,
        order: 3,
        dt: 2e-3,
        ..Default::default()
    };
    let mut sim = Simulation::new(cfg, &case.mesh, &case.part, case.elems[0].clone(), &comm);
    sim.init_rbc();
    let dir = std::env::temp_dir().join("rbx_insitu_pipeline");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("solver_stream.bpl");
    let writer = AsyncBplWriter::create(&path, 2).unwrap();
    let n = sim.n_local();
    for step in 1..=10u64 {
        assert!(sim.step().converged);
        writer.put(StepData {
            step,
            time: sim.state.time,
            vars: vec![Variable::f64("t", vec![n as u64], sim.state.t.clone())],
        });
    }
    let written = writer.close().unwrap();
    assert_eq!(written, 10);
    let steps = read_bpl(&path).unwrap();
    assert_eq!(steps.len(), 10);
    assert!((steps[9].time - sim.state.time).abs() < 1e-14);
}
