//! Rank-count independence: the distributed solver must produce the same
//! fields on 1 and 4 ranks (the communication layer is exact, not
//! approximate).

use rbx::comm::{run_on_ranks, Communicator, SingleComm};
use rbx::core::{Simulation, SolverConfig};

fn test_cfg() -> SolverConfig {
    SolverConfig {
        ra: 2e4,
        order: 3,
        dt: 2e-3,
        ic_noise: 1e-2,
        ..Default::default()
    }
}

#[test]
fn four_ranks_match_single_rank_fields() {
    let nranks = 4;
    let case = rbx::core::rbc_box_case(2.0, 4, 2, false, nranks);
    let cfg = test_cfg();
    let steps = 5;
    let n_per = (cfg.order + 1).pow(3);

    // Reference single-rank run (same global mesh, all elements local).
    let comm = SingleComm::new();
    let part1 = vec![0usize; case.mesh.num_elements()];
    let all: Vec<usize> = (0..case.mesh.num_elements()).collect();
    let mut reference = Simulation::new(cfg.clone(), &case.mesh, &part1, all, &comm);
    reference.init_rbc();
    for _ in 0..steps {
        let st = reference.step();
        assert!(st.converged);
    }

    // Distributed run.
    let (case_ref, cfg_ref) = (&case, &cfg);
    let results = run_on_ranks(nranks, move |comm| {
        let mut sim = Simulation::new(
            cfg_ref.clone(),
            &case_ref.mesh,
            &case_ref.part,
            case_ref.elems[comm.rank()].clone(),
            comm,
        );
        sim.init_rbc();
        for _ in 0..steps {
            let st = sim.step();
            assert!(st.converged, "rank {}: {st:?}", comm.rank());
        }
        (
            sim.my_elems.clone(),
            sim.state.t.clone(),
            sim.state.u[2].clone(),
            sim.state.p.clone(),
        )
    });

    // Compare element-by-element against the reference (global element id
    // → reference local offset is the identity).
    let mut max_dt = 0.0f64;
    let mut max_du = 0.0f64;
    let mut max_dp = 0.0f64;
    for (my, t, uz, p) in results {
        for (le, &ge) in my.iter().enumerate() {
            for nd in 0..n_per {
                let gidx = ge * n_per + nd;
                let lidx = le * n_per + nd;
                max_dt = max_dt.max((t[lidx] - reference.state.t[gidx]).abs());
                max_du = max_du.max((uz[lidx] - reference.state.u[2][gidx]).abs());
                max_dp = max_dp.max((p[lidx] - reference.state.p[gidx]).abs());
            }
        }
    }
    // Iterative tolerances allow tiny differences; fields must agree far
    // below physical scales.
    assert!(
        max_dt < 1e-7,
        "temperature diverged across ranks: {max_dt:.3e}"
    );
    assert!(
        max_du < 1e-7,
        "velocity diverged across ranks: {max_du:.3e}"
    );
    assert!(
        max_dp < 1e-5,
        "pressure diverged across ranks: {max_dp:.3e}"
    );
}

#[test]
fn two_rank_run_converges_and_advances() {
    let case = rbx::core::rbc_box_case(1.0, 2, 2, false, 2);
    let cfg = test_cfg();
    let (case_ref, cfg_ref) = (&case, &cfg);
    let out = run_on_ranks(2, move |comm| {
        let mut sim = Simulation::new(
            cfg_ref.clone(),
            &case_ref.mesh,
            &case_ref.part,
            case_ref.elems[comm.rank()].clone(),
            comm,
        );
        sim.init_rbc();
        let mut all_ok = true;
        for _ in 0..4 {
            all_ok &= sim.step().converged;
        }
        (all_ok, sim.state.time, sim.state.istep)
    });
    for (ok, time, istep) in out {
        assert!(ok);
        assert_eq!(istep, 4);
        assert!((time - 8e-3).abs() < 1e-14);
    }
}

#[test]
fn cylinder_multirank_matches_single_rank() {
    // The paper's curved production geometry across ranks: the o-grid
    // exercises face-orientation handling in the distributed
    // gather-scatter that boxes cannot.
    let nranks = 3;
    let case = rbx::core::rbc_cylinder_case(1.0, 1, nranks);
    let cfg = SolverConfig {
        ra: 2e4,
        order: 3,
        dt: 2e-3,
        ic_noise: 1e-2,
        ..Default::default()
    };
    let steps = 4;
    let n_per = (cfg.order + 1).pow(3);

    let comm = SingleComm::new();
    let part1 = vec![0usize; case.mesh.num_elements()];
    let all: Vec<usize> = (0..case.mesh.num_elements()).collect();
    let mut reference = Simulation::new(cfg.clone(), &case.mesh, &part1, all, &comm);
    reference.init_rbc();
    for _ in 0..steps {
        assert!(reference.step().converged);
    }

    let (case_ref, cfg_ref) = (&case, &cfg);
    let results = run_on_ranks(nranks, move |comm| {
        let mut sim = Simulation::new(
            cfg_ref.clone(),
            &case_ref.mesh,
            &case_ref.part,
            case_ref.elems[comm.rank()].clone(),
            comm,
        );
        sim.init_rbc();
        for _ in 0..steps {
            assert!(sim.step().converged);
        }
        (
            sim.my_elems.clone(),
            sim.state.t.clone(),
            sim.state.u[2].clone(),
        )
    });

    let mut max_d = 0.0f64;
    for (my, t, uz) in results {
        for (le, &ge) in my.iter().enumerate() {
            for nd in 0..n_per {
                max_d = max_d
                    .max((t[le * n_per + nd] - reference.state.t[ge * n_per + nd]).abs())
                    .max((uz[le * n_per + nd] - reference.state.u[2][ge * n_per + nd]).abs());
            }
        }
    }
    assert!(
        max_d < 1e-7,
        "cylinder fields diverged across ranks: {max_d:.3e}"
    );
}
