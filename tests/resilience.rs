//! End-to-end fault-tolerance acceptance tests: a production-shaped RBC
//! run must survive a mid-flight NaN via checkpoint rollback plus dt
//! reduction, and the restore path must reject a bit-flipped checkpoint
//! and fall back to an older generation.

use rbx::comm::SingleComm;
use rbx::core::{
    CheckpointSet, FaultPlan, RecoveryEvent, RecoveryPolicy, ResilientRunner, Simulation,
    SolverConfig,
};
use std::path::PathBuf;

fn test_cfg() -> SolverConfig {
    SolverConfig {
        ra: 2e4,
        order: 3,
        dt: 2e-3,
        ic_noise: 1e-2,
        ..Default::default()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rbx_resilience_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn nan_mid_flight_recovers_via_rollback_and_dt_reduction() {
    let case = rbx::core::rbc_box_case(1.0, 2, 2, false, 1);
    let comm = SingleComm::new();
    let cfg = test_cfg();
    let dt0 = cfg.dt;
    let mut sim = Simulation::new(cfg, &case.mesh, &case.part, case.elems[0].clone(), &comm);
    sim.init_rbc();

    let dir = tmpdir("nan_recovery");
    let policy = RecoveryPolicy {
        checkpoint_every: 2,
        dt_factor: 0.5,
        ..Default::default()
    };
    let faults = FaultPlan::new(42).inject_nan_at(5);
    let mut runner = ResilientRunner::new(CheckpointSet::new(&dir, 3), policy).with_faults(faults);

    let mut observed = Vec::new();
    let report = runner
        .run_with(&mut sim, 8, |s, _| observed.push(s.state.istep))
        .expect("run must complete despite the injected NaN");

    // The run reached the target with exactly one rollback and a halved dt.
    assert_eq!(sim.state.istep, 8);
    assert_eq!(report.steps_completed, 8);
    assert_eq!(report.rollbacks, 1);
    assert!((report.final_dt - dt0 * 0.5).abs() < 1e-18);
    assert!((sim.cfg.dt - dt0 * 0.5).abs() < 1e-18);

    // The recovered state carries no trace of the injected NaN.
    assert_eq!(sim.find_non_finite(), None);

    // The structured event log tells the whole story: a divergence at the
    // injected step, then a rollback to the last good checkpoint.
    assert!(report
        .events
        .iter()
        .any(|e| matches!(e, RecoveryEvent::Divergence { istep: 5, .. })));
    assert!(report.events.iter().any(|e| matches!(
        e,
        RecoveryEvent::RolledBack {
            from_step: 5,
            to_step: 4,
            ..
        }
    )));
    assert_eq!(runner.faults.fired.len(), 1);

    // The diverged attempt of step 5 never reaches the observer; only its
    // successful replay does, so the observed sequence stays monotone.
    assert_eq!(observed, (1..=8).collect::<Vec<_>>());
}

#[test]
fn bit_flipped_checkpoint_is_rejected_and_older_generation_restores() {
    let case = rbx::core::rbc_box_case(1.0, 2, 2, false, 1);
    let comm = SingleComm::new();
    let mut sim = Simulation::new(
        test_cfg(),
        &case.mesh,
        &case.part,
        case.elems[0].clone(),
        &comm,
    );
    sim.init_rbc();

    let dir = tmpdir("bitflip_fallback");
    let set = CheckpointSet::new(&dir, 3);
    for _ in 0..4 {
        let st = sim.step();
        assert!(st.verdict.is_healthy(), "setup step failed: {st:?}");
        set.write(&sim).expect("checkpoint write");
    }

    // Flip one bit deep inside the newest generation's payload region.
    let newest = set.path_for_step(4);
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    std::fs::write(&newest, &bytes).unwrap();

    let mut fresh = Simulation::new(
        test_cfg(),
        &case.mesh,
        &case.part,
        case.elems[0].clone(),
        &comm,
    );
    fresh.init_rbc();
    let outcome = set
        .restore_latest(&mut fresh)
        .expect("an older intact generation must restore");

    assert_eq!(
        outcome.path,
        set.path_for_step(3),
        "must fall back one generation"
    );
    assert_eq!(fresh.state.istep, 3);
    assert_eq!(outcome.rejected.len(), 1);
    let (rejected_path, err) = &outcome.rejected[0];
    assert_eq!(*rejected_path, newest);
    // The single-bit flip is caught by integrity verification (payload
    // flips surface as a checksum mismatch; structural flips as a parse
    // error) — never silently accepted.
    assert!(!err.to_string().is_empty());

    // The restored state continues stepping healthily.
    let st = fresh.step();
    assert!(st.verdict.is_healthy(), "restored run failed: {st:?}");
    assert_eq!(fresh.state.istep, 4);
}

#[test]
fn persistent_divergence_fails_loud_not_silent() {
    let case = rbx::core::rbc_box_case(1.0, 2, 2, false, 1);
    let comm = SingleComm::new();
    let mut sim = Simulation::new(
        test_cfg(),
        &case.mesh,
        &case.part,
        case.elems[0].clone(),
        &comm,
    );
    sim.init_rbc();

    let dir = tmpdir("exhaustion");
    let policy = RecoveryPolicy {
        checkpoint_every: 2,
        max_rollbacks: 2,
        ..Default::default()
    };
    // More injections than the rollback budget allows.
    let faults = FaultPlan::new(7)
        .inject_nan_at(3)
        .inject_nan_at(4)
        .inject_nan_at(5)
        .inject_nan_at(6);
    let mut runner = ResilientRunner::new(CheckpointSet::new(&dir, 3), policy).with_faults(faults);

    let err = runner
        .run(&mut sim, 20)
        .expect_err("budget must be exhausted");
    let msg = err.to_string();
    assert!(
        msg.contains("2"),
        "error must report the retry budget: {msg}"
    );
}
