//! Chaos-hardened communication acceptance tests.
//!
//! Seeded message-level faults (drop / delay / corruption) are injected
//! under the production comm stack — `HardenedComm<ChaosComm<ThreadComm>>`
//! — while a distributed RBC run executes under the `ResilientRunner`.
//! The acceptance bar: the run completes via collective abort-and-rollback
//! with zero panics and zero deadlocks, and the final checkpoint is
//! **byte-identical** to a fault-free run (comm faults are transient, so
//! the replayed trajectory must not drift). A *persistent* sender crash
//! no longer merely exhausts the budget: the `ElasticRunner` converts it
//! into a shrink-and-continue — survivors vote the dead rank out,
//! repartition its elements from the shared topology-free checkpoint, and
//! finish the run at the smaller width.
//!
//! All ranks share one checkpoint directory: checkpoints are written
//! collectively into a single topology-independent file, which is what
//! makes restore-onto-fewer-ranks possible in the first place.

use rbx::comm::{
    run_on_ranks_tuned, ChaosComm, CommFaultPlan, CommTuning, Communicator, HardenedComm,
};
use rbx::core::{
    CheckpointSet, ElasticOutcome, ElasticRunner, RecoveryEvent, RecoveryPolicy, ResilientRunner,
    Simulation, SolverConfig,
};
use rbx::telemetry::schema::validate_line;
use rbx::telemetry::Telemetry;
use std::path::{Path, PathBuf};
use std::time::Duration;

const STEPS: usize = 5;

fn test_cfg() -> SolverConfig {
    SolverConfig {
        ra: 2e4,
        order: 3,
        dt: 2e-3,
        ic_noise: 1e-2,
        ..Default::default()
    }
}

/// Short deadlines so fault detection (and therefore the whole matrix)
/// is fast; the poll slice and pending bound keep their defaults.
fn chaos_tuning() -> CommTuning {
    CommTuning {
        recv_timeout: Duration::from_millis(120),
        retries: 1,
        ..Default::default()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rbx_comm_chaos_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn case_for(nranks: usize) -> rbx::core::CaseSetup {
    match nranks {
        2 => rbx::core::rbc_box_case(1.0, 2, 2, false, 2),
        4 => rbx::core::rbc_box_case(2.0, 4, 2, false, 4),
        n => panic!("no case wired for {n} ranks"),
    }
}

struct RankOutcome {
    rollbacks: usize,
    comm_recovered: usize,
    faults_fired: u64,
    final_checkpoint: Vec<u8>,
}

/// Run STEPS resilient steps on `nranks` ranks under the full hardened
/// stack. `plan: None` runs fault-free (chaos stays disarmed) — the
/// byte-identity baseline over the *same* stack. All ranks checkpoint
/// into the shared `dir` (collective topology-free writes).
fn run_chaos_case(nranks: usize, dir: &Path, plan: Option<CommFaultPlan>) -> Vec<RankOutcome> {
    let case = case_for(nranks);
    let cfg = test_cfg();
    let (case_ref, cfg_ref, plan_ref) = (&case, &cfg, &plan);
    run_on_ranks_tuned(nranks, chaos_tuning(), move |tc| {
        let armed = plan_ref.is_some();
        let plan = plan_ref.clone().unwrap_or_else(|| CommFaultPlan::new(0));
        let chaos = ChaosComm::new(tc, plan);
        // Setup traffic (partition handshakes, initial masks) is not the
        // target of this test: arm the plan only for the stepped run.
        chaos.set_armed(false);
        let comm = HardenedComm::new(chaos);
        let mut sim = Simulation::new(
            cfg_ref.clone(),
            &case_ref.mesh,
            &case_ref.part,
            case_ref.elems[tc.rank()].clone(),
            &comm,
        );
        sim.init_rbc();

        let policy = RecoveryPolicy {
            checkpoint_every: 2,
            max_rollbacks: 6,
            ..Default::default()
        };
        let mut runner = ResilientRunner::new(CheckpointSet::new(dir, 4), policy);

        comm.inner().set_armed(armed);
        let report = runner
            .run(&mut sim, STEPS)
            .unwrap_or_else(|e| panic!("rank {}: chaos run failed: {e}", tc.rank()));
        comm.inner().set_armed(false);

        assert_eq!(sim.state.istep, STEPS);
        assert_eq!(sim.find_non_finite(), None, "rank {}", tc.rank());
        let final_path = runner.checkpoints.path_for_step(STEPS);
        RankOutcome {
            rollbacks: report.rollbacks,
            comm_recovered: report
                .events
                .iter()
                .filter(|e| matches!(e, RecoveryEvent::CommRecovered { .. }))
                .count(),
            faults_fired: comm.inner().faults_fired(),
            final_checkpoint: std::fs::read(&final_path)
                .unwrap_or_else(|e| panic!("rank {}: final checkpoint: {e}", tc.rank())),
        }
    })
}

#[test]
fn seeded_fault_matrix_heals_and_matches_fault_free_run() {
    for &nranks in &[2usize, 4] {
        let base_dir = tmpdir(&format!("baseline_{nranks}"));
        let baseline = run_chaos_case(nranks, &base_dir, None);
        for out in &baseline {
            assert_eq!(out.rollbacks, 0);
            assert_eq!(out.faults_fired, 0);
        }

        // One-shot ops land inside step 1 (each step issues hundreds of
        // armed sends), far from the final step, so no fault can race the
        // run's teardown.
        let matrix: Vec<(&str, CommFaultPlan, bool)> = vec![
            ("drop", CommFaultPlan::new(101).drop_send_at(0, 60), true),
            (
                "delay",
                CommFaultPlan::new(102).delay_send_at(1 % nranks, 45),
                false,
            ),
            (
                "corrupt",
                CommFaultPlan::new(103).corrupt_send_at(nranks - 1, 75),
                true,
            ),
        ];
        for (name, plan, must_roll_back) in matrix {
            let dir = tmpdir(&format!("{name}_{nranks}"));
            let outcomes = run_chaos_case(nranks, &dir, Some(plan));

            let fired: u64 = outcomes.iter().map(|o| o.faults_fired).sum();
            assert!(fired >= 1, "{name}/{nranks}: no fault actually fired");
            if must_roll_back {
                // A lost or corrupted frame forces a collective rollback;
                // every rank heals through the same comm-recovery path.
                for (r, o) in outcomes.iter().enumerate() {
                    assert!(
                        o.rollbacks >= 1,
                        "{name}/{nranks} rank {r}: expected a rollback"
                    );
                    assert!(
                        o.comm_recovered >= 1,
                        "{name}/{nranks} rank {r}: no comm_recovered event"
                    );
                }
            }
            // The replayed trajectory must carry no trace of the fault:
            // final checkpoints byte-identical to the fault-free run.
            for (r, (o, b)) in outcomes.iter().zip(&baseline).enumerate() {
                assert!(
                    o.final_checkpoint == b.final_checkpoint,
                    "{name}/{nranks} rank {r}: final checkpoint differs from fault-free run"
                );
            }
        }
    }
}

/// A permanently crashed sender no longer kills the job: the survivors
/// vote it out, repartition, restore the shared topology-free checkpoint,
/// and finish at the smaller width. The dead rank exits with a clean
/// eviction, the survivor reports exactly one shrink, and nobody sees
/// `RecoveryExhausted`.
#[test]
fn persistent_sender_crash_shrinks_and_continues() {
    let nranks = 2;
    let case = case_for(nranks);
    let cfg = test_cfg();
    let dir = tmpdir("crash");
    let chk = dir.join("chk");
    std::fs::create_dir_all(&chk).unwrap();
    // Tighter deadlines still: every retry of the crashed rank re-fails,
    // so the run's wall time is bounded by budget x deadline.
    let tuning = CommTuning {
        recv_timeout: Duration::from_millis(60),
        retries: 0,
        ..Default::default()
    };
    let calib_chk = dir.join("calib_chk");
    std::fs::create_dir_all(&calib_chk).unwrap();
    let (case_ref, cfg_ref, dir_ref, chk_ref, calib_ref) = (&case, &cfg, &dir, &chk, &calib_chk);
    let outcomes = run_on_ranks_tuned(nranks, tuning, move |tc| {
        let policy = RecoveryPolicy {
            checkpoint_every: 2,
            max_rollbacks: 1,
            ..Default::default()
        };
        // Calibration pass: build the world and write the anchor with a
        // benign plan, counting armed send ops. The crash threshold then
        // lands just past setup — the job starts healthy and rank 1 goes
        // permanently silent early in the stepped run.
        let setup_ops = {
            let chaos = ChaosComm::new(&tc, CommFaultPlan::new(7));
            let comm = HardenedComm::new(chaos);
            comm.inner().set_armed(true);
            ElasticRunner::new(calib_ref, 4, policy)
                .run(cfg_ref, &case_ref.mesh, &comm, None, 0)
                .unwrap_or_else(|e| panic!("rank {}: calibration errored: {e}", tc.rank()));
            comm.inner().send_ops()
        };
        let plan = CommFaultPlan::new(7).crash_sends_from(1, setup_ops + 50);
        let chaos = ChaosComm::new(&tc, plan);
        let comm = HardenedComm::new(chaos);
        let tel = Telemetry::enabled();
        let jsonl = dir_ref.join(format!("rank{}.jsonl", tc.rank()));
        tel.open_jsonl(&jsonl).unwrap();
        comm.set_telemetry(&tel);
        let runner = ElasticRunner::new(chk_ref, 4, policy);
        comm.inner().set_armed(true);
        let out = runner
            .run(cfg_ref, &case_ref.mesh, &comm, Some(&tel), STEPS)
            .unwrap_or_else(|e| panic!("rank {}: elastic run errored: {e}", tc.rank()));
        let prom = dir_ref.join(format!("rank{}.prom", tc.rank()));
        tel.write_prometheus(&prom).unwrap();
        (out, std::fs::read_to_string(&prom).unwrap(), jsonl)
    });

    // Rank 1 (the crashed sender) must learn of its own eviction.
    match &outcomes[1].0 {
        ElasticOutcome::Evicted { survivors, .. } => assert_eq!(*survivors, 1),
        other => panic!("rank 1 should be evicted, got {other:?}"),
    }
    // Rank 0 survives, shrinks exactly once, and finishes all steps solo.
    let (report, prom, jsonl) = match &outcomes[0] {
        (ElasticOutcome::Completed(r), prom, jsonl) => (r, prom, jsonl),
        (other, ..) => panic!("rank 0 should complete via shrink, got {other:?}"),
    };
    assert_eq!(report.steps_completed, STEPS);
    assert_eq!(report.shrinks, 1);
    assert_eq!(report.initial_ranks, 2);
    assert_eq!(report.final_ranks, 1);
    let shrink_events = report
        .events
        .iter()
        .filter(|e| matches!(e, RecoveryEvent::Shrink { .. }))
        .count();
    assert_eq!(shrink_events, 1, "events: {:?}", report.events);
    assert!(
        prom.contains("rbx_recovery_shrink_total 1"),
        "prometheus export must count the shrink:\n{prom}"
    );
    // The telemetry stream records the shrink as a schema-valid recovery
    // event.
    let text = std::fs::read_to_string(jsonl).unwrap();
    let mut saw_shrink = false;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        validate_line(line)
            .unwrap_or_else(|e| panic!("invalid telemetry record: {e}\n  line: {line}"));
        if line.contains("\"shrink\"") {
            saw_shrink = true;
        }
    }
    assert!(saw_shrink, "telemetry stream must record the shrink event");
}

#[test]
fn chaos_run_emits_schema_valid_telemetry() {
    let nranks = 2;
    let case = case_for(nranks);
    let cfg = test_cfg();
    let dir = tmpdir("telemetry");
    let chk = dir.join("chk");
    std::fs::create_dir_all(&chk).unwrap();
    let (case_ref, cfg_ref, dir_ref, chk_ref) = (&case, &cfg, &dir, &chk);
    let outcomes = run_on_ranks_tuned(nranks, chaos_tuning(), move |tc| {
        let chaos = ChaosComm::new(tc, CommFaultPlan::new(11).drop_send_at(0, 60));
        chaos.set_armed(false);
        let comm = HardenedComm::new(chaos);
        let tel = Telemetry::enabled();
        let jsonl = dir_ref.join(format!("rank{}.jsonl", tc.rank()));
        tel.open_jsonl(&jsonl).unwrap();
        comm.set_telemetry(&tel);
        let mut sim = Simulation::new(
            cfg_ref.clone(),
            &case_ref.mesh,
            &case_ref.part,
            case_ref.elems[tc.rank()].clone(),
            &comm,
        );
        sim.init_rbc();
        sim.set_telemetry(&tel);
        let policy = RecoveryPolicy {
            checkpoint_every: 2,
            max_rollbacks: 6,
            ..Default::default()
        };
        let mut runner = ResilientRunner::new(CheckpointSet::new(chk_ref, 4), policy);
        comm.inner().set_armed(true);
        let report = runner.run(&mut sim, STEPS).expect("telemetry chaos run");
        comm.inner().set_armed(false);
        let prom = dir_ref.join(format!("rank{}.prom", tc.rank()));
        tel.write_prometheus(&prom).unwrap();
        (jsonl, prom, report.rollbacks)
    });

    let total_rollbacks: usize = outcomes.iter().map(|(_, _, r)| r).sum();
    assert!(
        total_rollbacks >= 1,
        "the dropped frame must force a rollback"
    );
    let mut saw_comm_recovered = false;
    let mut saw_comm_metric = false;
    for (jsonl, prom, _) in &outcomes {
        let text = std::fs::read_to_string(jsonl).unwrap();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            validate_line(line)
                .unwrap_or_else(|e| panic!("invalid telemetry record: {e}\n  line: {line}"));
            if line.contains("comm_recovered") {
                saw_comm_recovered = true;
            }
        }
        let prom_text = std::fs::read_to_string(prom).unwrap();
        if prom_text.contains("rbx_comm_epoch_aborts_total")
            || prom_text.contains("rbx_comm_timeouts_total")
        {
            saw_comm_metric = true;
        }
    }
    assert!(
        saw_comm_recovered,
        "telemetry stream must record the comm recovery"
    );
    assert!(
        saw_comm_metric,
        "prometheus export must carry the comm fault counters"
    );
}
