//! Temporal convergence of the splitting scheme (paper §6: BDF3/EXT3).
//!
//! The error of the full Karniadakis splitting against a fine-Δt reference
//! must shrink rapidly under Δt-halving. Two caveats shape the assertions:
//! the scheme's startup (inconsistent initial pressure, order ramp) and
//! the pressure-splitting boundary treatment leave lower-order footprints
//! that dominate the max-norm at very small Δt on short horizons — the
//! well-known behaviour of PnPn splitting schemes. We therefore assert
//! supra-second-order contraction at moderate Δt and strong cumulative
//! contraction across the tested range, rather than a clean asymptotic
//! third-order slope.

use rbx::comm::SingleComm;
use rbx::core::{Simulation, SolverConfig};

const T_END: f64 = 0.02;

fn final_temperature(dt: f64) -> Vec<f64> {
    let case = rbx::core::rbc_box_case(1.0, 2, 2, false, 1);
    let comm = SingleComm::new();
    let cfg = SolverConfig {
        ra: 1e4,
        order: 3,
        dt,
        ic_noise: 0.05,
        p_tol: 1e-11,
        v_tol: 1e-12,
        ..Default::default()
    };
    let mut sim = Simulation::new(cfg, &case.mesh, &case.part, case.elems[0].clone(), &comm);
    sim.init_rbc();
    let steps = (T_END / dt).round() as usize;
    for _ in 0..steps {
        let st = sim.step();
        assert!(st.converged, "dt = {dt}: {st:?}");
    }
    assert!((sim.state.time - T_END).abs() < 1e-12);
    sim.state.t.clone()
}

fn max_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn splitting_scheme_converges_fast_in_time() {
    let reference = final_temperature(1.25e-4);
    let e1 = max_diff(&final_temperature(2e-3), &reference);
    let e2 = max_diff(&final_temperature(1e-3), &reference);
    let e3 = max_diff(&final_temperature(5e-4), &reference);
    let r12 = e1 / e2;
    let r23 = e2 / e3;
    eprintln!("temporal errors: {e1:.3e} / {e2:.3e} / {e3:.3e}; ratios {r12:.2}, {r23:.2}");
    // Monotone decrease…
    assert!(
        e1 > e2 && e2 > e3,
        "errors not monotone: {e1:.3e}, {e2:.3e}, {e3:.3e}"
    );
    // …supra-second-order at moderate Δt…
    assert!(
        r12 > 2.8,
        "first halving contracted only {r12:.2}× (e = {e1:.3e} → {e2:.3e})"
    );
    // …and strong cumulative contraction over the 4× range.
    assert!(
        e1 / e3 > 5.0,
        "cumulative contraction only {:.2}× over 4× in Δt",
        e1 / e3
    );
    // Absolute accuracy at the finest tested Δt.
    assert!(e3 < 1e-6, "e(5e-4) = {e3:.3e}");
}

#[test]
fn order_ramp_does_not_poison_long_runs() {
    // Starting BDF from order 1 must not leave a first-order error
    // footprint at moderate Δt (covered by the contraction test above);
    // here we verify the ramp mechanics: early steps run at reduced order
    // without failing and the history fills to the target depth.
    let case = rbx::core::rbc_box_case(1.0, 1, 2, false, 1);
    let comm = SingleComm::new();
    let cfg = SolverConfig {
        ra: 1e3,
        order: 3,
        dt: 1e-3,
        ic_noise: 1e-2,
        ..Default::default()
    };
    let mut sim = Simulation::new(cfg, &case.mesh, &case.part, case.elems[0].clone(), &comm);
    sim.init_rbc();
    for step in 1..=4 {
        let st = sim.step();
        assert!(st.converged, "ramp step {step}: {st:?}");
    }
    assert_eq!(sim.state.u_lag.len(), 3, "history depth after ramp");
    assert_eq!(sim.state.f_lag.len(), 3);
}
